package core

import "multicluster/internal/isa"

// fetchItem is one dynamic instruction waiting to be distributed: either
// fresh from the trace reader or re-queued by a replay exception.
type fetchItem struct {
	idx   int
	in    *isa.Instruction
	addr  uint64
	taken bool
}

// distPlan is the outcome of the distribution rules of §2.1 for one
// instruction: which cluster executes the computation (the master), whether
// a slave copy is needed, which operands the slave forwards, and where
// physical registers must be allocated. The source lists are fixed-size
// (an instruction has at most two sources) so planning never allocates.
type distPlan struct {
	dual     bool
	masterCl int

	// masterSrcs[:nMaster] / slaveSrcs[:nSlave] are the architectural
	// source registers each copy reads from its own cluster's register
	// file.
	masterSrcs [2]isa.Reg
	slaveSrcs  [2]isa.Reg
	nMaster    int
	nSlave     int

	sendsResult bool
	// allocIn[c] is true when a physical destination register must be
	// allocated in cluster c.
	allocIn [2]bool
}

// plan applies the register-driven distribution rules. For a single-cluster
// machine everything lands in cluster 0.
func (p *Processor) plan(in *isa.Instruction) distPlan {
	var pl distPlan
	// in.Sources() without the slice: RegNone and hardwired zero registers
	// never create dependences or cluster constraints.
	var srcs [2]isa.Reg
	nSrc := 0
	if r := in.Src1; r != isa.RegNone && !r.IsZero() {
		srcs[nSrc] = r
		nSrc++
	}
	if r := in.Src2; r != isa.RegNone && !r.IsZero() {
		srcs[nSrc] = r
		nSrc++
	}
	dest := in.Dest()

	if p.cfg.Clusters == 1 {
		pl.masterSrcs = srcs
		pl.nMaster = nSrc
		if dest != isa.RegNone {
			pl.allocIn[0] = true
		}
		return pl
	}

	a := p.cfg.Assignment
	var localCount [2]int
	for _, r := range srcs[:nSrc] {
		if !a.IsGlobal(r) {
			localCount[a.Home(r)]++
		}
	}
	destGlobal := false
	if dest != isa.RegNone {
		if a.IsGlobal(dest) {
			destGlobal = true
		} else {
			localCount[a.Home(dest)]++
		}
	}
	pl.masterCl = p.pickMaster(srcs[:nSrc], localCount)

	other := 1 - pl.masterCl
	for _, r := range srcs[:nSrc] {
		if a.In(r, pl.masterCl) {
			pl.masterSrcs[pl.nMaster] = r
			pl.nMaster++
		} else if pl.nSlave == 0 || pl.slaveSrcs[0] != r {
			// One transfer-buffer entry per distinct value: an instruction
			// naming the same remote register twice forwards it once.
			pl.slaveSrcs[pl.nSlave] = r
			pl.nSlave++
		}
	}
	switch {
	case dest == isa.RegNone:
	case destGlobal:
		pl.allocIn[0], pl.allocIn[1] = true, true
		pl.sendsResult = true
	case a.Home(dest) == pl.masterCl:
		pl.allocIn[pl.masterCl] = true
	default:
		pl.allocIn[other] = true
		pl.sendsResult = true
	}
	pl.dual = pl.sendsResult || pl.nSlave > 0
	return pl
}

// pickMaster applies the configured master-selection policy.
func (p *Processor) pickMaster(srcs []isa.Reg, localCount [2]int) int {
	switch p.cfg.MasterSelect {
	case MasterFirstSource:
		for _, r := range srcs {
			if !p.cfg.Assignment.IsGlobal(r) {
				return p.cfg.Assignment.Home(r)
			}
		}
		return p.balancePick()
	case MasterAlternate:
		c := int(p.nextSeq & 1)
		return c
	default:
		switch {
		case localCount[0] > localCount[1]:
			return 0
		case localCount[1] > localCount[0]:
			return 1
		}
		return p.balancePick()
	}
}

// balancePick breaks master-selection ties toward the cluster with the
// lighter dispatch queue, then the fewer lifetime distributions, then 0.
func (p *Processor) balancePick() int {
	if len(p.queue[0]) != len(p.queue[1]) {
		if len(p.queue[1]) < len(p.queue[0]) {
			return 1
		}
		return 0
	}
	if p.stats.Cluster[1].Distributed < p.stats.Cluster[0].Distributed {
		return 1
	}
	return 0
}

// canDistribute checks, without side effects, that every resource the plan
// needs is available: a dispatch-queue entry in each target cluster and a
// free physical register wherever the destination is allocated. It returns
// the stall reason when blocked.
func (p *Processor) canDistribute(in *isa.Instruction, pl distPlan) (ok bool, queueFull, regsFull bool) {
	need := [2]int{}
	need[pl.masterCl]++
	if pl.dual {
		need[1-pl.masterCl]++
	}
	for c := 0; c < p.cfg.Clusters; c++ {
		if need[c] > 0 && len(p.queue[c])+need[c] > p.cfg.QueueSize {
			return false, true, false
		}
	}
	if dest := in.Dest(); dest != isa.RegNone {
		fp := bIdx(dest.IsFP())
		for c := 0; c < p.cfg.Clusters; c++ {
			if pl.allocIn[c] && p.freeRegs[c][fp] < 1 {
				return false, false, true
			}
		}
	}
	return true, false, false
}

// distribute commits one instruction to the machine at cycle t: builds the
// dynamic instruction and its copies, renames the destination, allocates
// physical registers, inserts the copies into dispatch queues, and predicts
// conditional branches (footnote 2: prediction happens here, at insertion).
func (p *Processor) distribute(item fetchItem, pl distPlan, t int64) *dynInst {
	d := p.newDynInst()
	*d = dynInst{
		seq:         p.nextSeq,
		idx:         item.idx,
		in:          item.in,
		addr:        item.addr,
		taken:       item.taken,
		latency:     item.in.Op.Latency(),
		dual:        pl.dual,
		masterCl:    pl.masterCl,
		resultCycle: never,
		readyIn:     [2]int64{never, never},
		doneCycle:   never,
		destReg:     item.in.Dest(),
	}
	p.nextSeq++

	// lookup resolves the planned source registers to their in-flight
	// producers in cluster cl. Retired producers are skipped: their values
	// are committed (readyIn never exceeds doneCycle), so they can never
	// delay an issue.
	lookup := func(u *uop, regs [2]isa.Reg, n, cl int) {
		for i := 0; i < n; i++ {
			if prod := p.rename[cl][regs[i]]; prod != nil && !prod.retired() {
				u.srcs[u.nSrcs] = prod
				u.nSrcs++
			}
		}
	}

	m := &d.mu
	*m = uop{
		inst:          d,
		cluster:       pl.masterCl,
		master:        true,
		fwdOperands:   pl.nSlave,
		sendsResult:   pl.sendsResult,
		slotClass:     item.in.Op.Class(),
		distributedAt: t,
	}
	lookup(m, pl.masterSrcs, pl.nMaster, pl.masterCl)
	d.master = m
	d.copies = 1
	p.queue[pl.masterCl] = append(p.queue[pl.masterCl], m)
	p.stats.Cluster[pl.masterCl].Distributed++

	if pl.dual {
		other := 1 - pl.masterCl
		s := &d.su
		*s = uop{
			inst:          d,
			cluster:       other,
			master:        false,
			opFwdSlave:    pl.nSlave > 0,
			recvsResult:   pl.sendsResult,
			slotClass:     slaveSlotClass(item.in, pl),
			distributedAt: t,
		}
		lookup(s, pl.slaveSrcs, pl.nSlave, other)
		d.slave = s
		d.copies = 2
		p.queue[other] = append(p.queue[other], s)
		p.stats.Cluster[other].Distributed++
		p.stats.DualDist++
		if s.opFwdSlave {
			p.stats.OperandForwards++
		}
		if pl.sendsResult {
			p.stats.ResultForwards++
		}
	} else {
		p.stats.SingleDist++
	}

	// Rename the destination: record the previous producer for squash
	// recovery and claim a physical register wherever the value lives.
	if d.destReg != isa.RegNone {
		fp := bIdx(d.destReg.IsFP())
		for c := 0; c < p.cfg.Clusters; c++ {
			if pl.allocIn[c] {
				d.prevProd[c] = p.rename[c][d.destReg]
				p.rename[c][d.destReg] = d
				d.renamed[c] = true
				p.freeRegs[c][fp]--
			}
		}
	}

	// Store→load ordering: loads wait on the youngest older store to the
	// same word; stores publish themselves. Squashed stores are always
	// re-distributed before any younger load, so stale entries cannot leak
	// into live dependences.
	if p.lastStore != nil {
		switch item.in.Op.Class() {
		case isa.ClassLoad:
			if st := p.lastStore[item.addr&^7]; st != nil && !st.retired() && !st.squashed {
				m.memDep = st
			}
		case isa.ClassStore:
			p.lastStore[item.addr&^7] = d
		}
	}

	// Conditional branches are predicted at dispatch-queue insertion.
	if item.in.Op.IsCondBranch() {
		d.isCondBr = true
		d.snap = p.pred.Predict(isa.PCOf(item.idx))
		d.mispredicted = d.snap.Taken() != item.taken
		p.pendingBr = append(p.pendingBr, d)
	}

	p.active = append(p.active, d)
	p.stats.Fetched++
	if p.probes != nil && p.probes.Distribute != nil {
		p.probes.Distribute(pl.dual)
	}
	return d
}

// slaveSlotClass returns the issue-rule class a slave copy's issue slot
// counts against: the file it touches (an integer read/write takes an
// integer slot, per scenario two of §2.1).
func slaveSlotClass(in *isa.Instruction, pl distPlan) isa.Class {
	if pl.nSlave > 0 {
		for _, r := range pl.slaveSrcs[:pl.nSlave] {
			if r.IsFP() {
				return isa.ClassFPOther
			}
		}
		return isa.ClassIntOther
	}
	if dest := in.Dest(); dest != isa.RegNone && dest.IsFP() {
		return isa.ClassFPOther
	}
	return isa.ClassIntOther
}

// bIdx converts a file flag to an index (0 int, 1 fp).
func bIdx(fp bool) int {
	if fp {
		return 1
	}
	return 0
}
