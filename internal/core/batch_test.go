package core

import (
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"multicluster/internal/trace"
)

// sliceSource adapts a pre-materialized entry slice to trace.Source, handing
// each batch member its own independent reader.
type sliceSource struct {
	entries []trace.Entry
}

func (s sliceSource) NewReader() trace.Reader {
	return &trace.SliceReader{Entries: s.entries}
}

// TestRunBatchMatchesStandalone pins the batch runner's core contract:
// stepping N configurations over a shared source produces statistics
// identical to N independent runs — slab recycling between members must be
// invisible to the simulation.
func TestRunBatchMatchesStandalone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	_, entries := randomStream(rng, 20_000)
	src := sliceSource{entries: entries}

	cfgs := []Config{
		SingleCluster8Way(),
		DualCluster4Way(),
		SingleCluster4Way(),
		DualCluster2Way(),
	}
	for i := range cfgs {
		cfgs[i].MaxCycles = int64(len(entries)) * 200
	}

	batched, err := RunBatch(cfgs, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched) != len(cfgs) {
		t.Fatalf("RunBatch returned %d stats, want %d", len(batched), len(cfgs))
	}
	for i, cfg := range cfgs {
		p, err := New(cfg, src.NewReader())
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched[i].Snapshot(), want.Snapshot()) {
			t.Errorf("member %d: batched stats diverge from standalone run", i)
		}
	}
}

// TestRunBatchProbes checks that a probe set installed on the batch observes
// every member without perturbing the statistics.
func TestRunBatchProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, entries := randomStream(rng, 2_000)
	src := sliceSource{entries: entries}

	cfgs := []Config{SingleCluster8Way(), DualCluster4Way()}
	for i := range cfgs {
		cfgs[i].MaxCycles = int64(len(entries)) * 200
	}

	var cycles int64
	probes := &Probes{Cycle: func(CycleSample) { cycles++ }}
	withProbes, err := RunBatchProbes(cfgs, src, probes)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 {
		t.Error("probes observed no cycle samples across the batch")
	}
	plain, err := RunBatch(cfgs, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(withProbes[i].Snapshot(), plain[i].Snapshot()) {
			t.Errorf("member %d: probes perturbed the simulation", i)
		}
	}
}

// TestRunBatchMemberError checks that a failing member aborts the batch with
// its index attributed.
func TestRunBatchMemberError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, entries := randomStream(rng, 500)
	src := sliceSource{entries: entries}

	bad := SingleCluster8Way()
	bad.Clusters = 0 // fails Config validation
	_, err := RunBatch([]Config{SingleCluster8Way(), bad}, src)
	if err == nil {
		t.Fatal("RunBatch accepted an invalid member configuration")
	}
	if want := "batch member 1"; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not attribute the failing member (%q)", err, want)
	}
}

// TestSlabArenaRecycles pins the arena mechanics the batch runner relies on:
// reclaim adopts a completed processor's blocks and detaches them from the
// processor, and take returns a recycled block zeroed — indistinguishable
// from a fresh allocation.
func TestSlabArenaRecycles(t *testing.T) {
	slabPool = sync.Pool{} // isolate from blocks pooled by other tests
	a := &slabArena{}
	if b := a.take(); b != nil {
		t.Fatal("take on an empty arena returned a block")
	}

	blk := make([]dynInst, dynInstSlabSize)
	blk[3].seq = 99
	blk[3].squashed = true
	p := &Processor{blocks: [][]dynInst{blk}, slab: blk}
	a.reclaim(p)
	if p.blocks != nil || p.slab != nil {
		t.Error("reclaim left the processor attached to its slabs")
	}

	got := a.take()
	if got == nil {
		t.Fatal("take returned nil after reclaim")
	}
	if &got[0] != &blk[0] {
		t.Error("take did not return the reclaimed block's storage")
	}
	zero := dynInst{}
	for i := range got {
		if !reflect.DeepEqual(got[i], zero) {
			t.Fatalf("recycled block entry %d not zeroed: %+v", i, got[i])
		}
	}
	if b := a.take(); b != nil {
		t.Error("arena handed out the same block twice")
	}

	// release feeds the cross-batch pool: a later batch's arena starts
	// empty but still recycles the released storage.
	p2 := &Processor{blocks: [][]dynInst{got}, slab: got}
	a.reclaim(p2)
	a.release()
	next := &slabArena{}
	if b := next.take(); b == nil || &b[0] != &blk[0] {
		t.Error("released block did not reach the cross-batch pool")
	}
}
