package core

import "multicluster/internal/isa"

// Dynamic reassignment of architectural registers (§6 of the paper, built
// on the hardware mechanism of [3]): the compiler marks program points
// where the register-to-cluster assignment may change and supplies the new
// assignment. The machine serializes at the hint — fetch stalls until the
// pipeline drains — migrates the committed values of every register whose
// home cluster changes, and resumes under the new assignment.
//
// Reassignment points are keyed by static instruction index and fire once,
// the first time fetch reaches them (the intended use is phase changes, not
// per-iteration flapping).

// Reassignment is one compiler-provided hint.
type Reassignment struct {
	// AtIndex is the static instruction index the hint is attached to; the
	// switch happens before that instruction is distributed.
	AtIndex int `json:"at_index"`
	// To is the assignment to switch to.
	To isa.Assignment `json:"to"`
}

// ReassignStats counts dynamic-reassignment activity.
type ReassignStats struct {
	// Applied is the number of hints taken.
	Applied int64 `json:"applied"`
	// DrainCycles counts fetch-stall cycles spent waiting for the pipeline
	// to empty before a switch.
	DrainCycles int64 `json:"drain_cycles"`
	// MigratedRegs counts architectural registers whose committed values
	// were copied between clusters.
	MigratedRegs int64 `json:"migrated_regs"`
	// MigrateCycles counts the cycles those copies took.
	MigrateCycles int64 `json:"migrate_cycles"`
}

// migrateBandwidth is how many register values cross between clusters per
// cycle during a reassignment switch (one transfer each way, matching the
// transfer-buffer datapaths).
const migrateBandwidth = 2

// pendingReassign returns the hint attached to the given static index, if
// any remains.
func (p *Processor) pendingReassign(idx int) (Reassignment, bool) {
	for _, r := range p.reassigns {
		if r.AtIndex == idx {
			return r, true
		}
	}
	return Reassignment{}, false
}

// applyReassign performs the switch at cycle t, assuming the machine has
// drained. It returns the cycle fetch may resume.
func (p *Processor) applyReassign(r Reassignment, t int64) int64 {
	moved := 0
	old := p.cfg.Assignment
	for n := 0; n < isa.NumRegs; n++ {
		reg := isa.RegFromOrdinal(n)
		if reg.IsZero() {
			continue
		}
		oldGlobal, newGlobal := old.IsGlobal(reg), r.To.IsGlobal(reg)
		switch {
		case oldGlobal && newGlobal:
			// Copies already everywhere.
		case oldGlobal != newGlobal:
			moved++ // promote or demote: one copy crosses
		case old.Home(reg) != r.To.Home(reg):
			moved++
		}
	}
	p.cfg.Assignment = r.To
	// Committed state moved between register files; the rename tables hold
	// no in-flight producers after the drain, so clearing them makes
	// lookups under the new homes correctly see architectural values.
	for c := 0; c < p.cfg.Clusters; c++ {
		p.rename[c] = [isa.NumRegs + 1]*dynInst{}
		p.freeRegs[c][0] = p.cfg.IntRegs - p.backedRegs(c, false)
		p.freeRegs[c][1] = p.cfg.FPRegs - p.backedRegs(c, true)
	}
	// Drop the applied hint.
	kept := p.reassigns[:0]
	for _, h := range p.reassigns {
		if h.AtIndex != r.AtIndex {
			kept = append(kept, h)
		}
	}
	p.reassigns = kept

	cost := int64((moved + migrateBandwidth - 1) / migrateBandwidth)
	p.stats.Reassign.Applied++
	p.stats.Reassign.MigratedRegs += int64(moved)
	p.stats.Reassign.MigrateCycles += cost
	return t + cost
}
