package core

// This file is the core's observability seam: an optional, nil-checked
// probe hook that surfaces per-cycle occupancy and per-event stall/replay
// accounting without touching the Stats the golden fixtures pin. With no
// probes installed the only cost is a handful of nil checks — the
// simulated machine state, the statistics, and the cycle-by-cycle
// behaviour are bit-for-bit identical, which `make bench` and the golden
// suite enforce.

// StallCause classifies a cycle in which fetch could make no progress,
// mirroring the FetchStalls counters (§4's stall taxonomy: the front end
// is blocked by the memory system, the branch unit, or a full
// queue/register structure, or is paying a replay restart penalty).
type StallCause uint8

const (
	// StallICacheMiss: fetch is waiting on an instruction-cache fill.
	StallICacheMiss StallCause = iota
	// StallMispredict: fetch is blocked behind an unresolved mispredicted
	// branch.
	StallMispredict
	// StallQueueFull: a dispatch queue has no room for the next
	// instruction's copies.
	StallQueueFull
	// StallRegsFull: no free physical register where the destination must
	// be allocated.
	StallRegsFull
	// StallReplay: the restart penalty of an instruction-replay exception.
	StallReplay
	// NumStallCauses is the number of StallCause values.
	NumStallCauses
)

func (c StallCause) String() string {
	switch c {
	case StallICacheMiss:
		return "icache_miss"
	case StallMispredict:
		return "mispredict"
	case StallQueueFull:
		return "queue_full"
	case StallRegsFull:
		return "regs_full"
	case StallReplay:
		return "replay"
	}
	return "unknown"
}

// CycleSample is the machine-occupancy snapshot handed to Probes.Cycle
// once per simulated cycle: dispatch-queue and transfer-buffer occupancy
// per cluster, plus the active-window depth. It is taken after issue and
// before fetch — the same point the Stats queue-occupancy sums accumulate
// at, so the sampled distribution integrates to the reported mean.
type CycleSample struct {
	Cycle      int64
	Queue      [2]int
	OperandBuf [2]int
	ResultBuf  [2]int
	Active     int
}

// Probes is the optional observability hook set. Every field may be nil;
// a nil field (or a nil *Probes) costs one pointer check at its call
// site. Probes observe — they must not mutate machine state, and they run
// synchronously on the simulation goroutine.
type Probes struct {
	// Cycle is called once at the end of every simulated cycle.
	Cycle func(CycleSample)
	// FetchStall is called once per cycle in which fetch is stalled, with
	// the cause — the same cycles the Stats.Fetch counters accumulate.
	FetchStall func(StallCause)
	// Replay is called on every instruction-replay exception with the
	// number of squashed instructions.
	Replay func(squashed int)
	// Distribute is called for every logical instruction entering the
	// machine, with whether it was dual-distributed.
	Distribute func(dual bool)
}

// SetProbes installs (or, with nil, removes) the probe hooks. Call before
// Run; probes are not part of Config so they never perturb the
// content-addressed run keys of the experiment cache.
func (p *Processor) SetProbes(pr *Probes) { p.probes = pr }

// probeStall reports one stalled fetch cycle to the probes.
func (p *Processor) probeStall(cause StallCause) {
	if p.probes != nil && p.probes.FetchStall != nil {
		p.probes.FetchStall(cause)
	}
}

// probeCycle reports the end-of-cycle occupancy sample.
func (p *Processor) probeCycle(t int64) {
	if p.probes == nil || p.probes.Cycle == nil {
		return
	}
	s := CycleSample{
		Cycle:      t,
		OperandBuf: p.opBufUsed,
		ResultBuf:  p.resBufUsed,
		Active:     len(p.active),
	}
	for c := 0; c < p.cfg.Clusters; c++ {
		s.Queue[c] = len(p.queue[c])
	}
	p.probes.Cycle(s)
}
