// Golden-stats regression suite: every workload × every canonical machine
// configuration, simulated for a fixed instruction budget, with the full
// StatsSnapshot compared field-for-field against a committed fixture. The
// fixtures were captured from the tree *before* the hot-path optimization
// work, so any cycle-level divergence — one extra stall, one reordered
// issue — fails the suite. Regenerate deliberately with
//
//	go test ./internal/core -run TestGoldenStats -update
//
// and review the diff like any other behaviour change.
package core_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"multicluster/internal/core"
	"multicluster/internal/experiment"
	"multicluster/internal/partition"
	"multicluster/internal/trace"
	"multicluster/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden stats fixtures under testdata/golden")

// goldenInstrs matches the bench suite's budget: long enough for caches and
// predictors to reach steady state, short enough that the 24-run matrix
// stays in test-suite territory.
const goldenInstrs = 60_000

// goldenConfig pairs a canonical configuration with its fixture name.
type goldenConfig struct {
	name string
	cfg  core.Config
}

// goldenConfigs returns the four canonical machines of the evaluation. The
// MaxCycles guard only bounds runaways; a fixture run must end at trace end.
func goldenConfigs() []goldenConfig {
	mk := func(name string, cfg core.Config) goldenConfig {
		cfg.MaxCycles = goldenInstrs * 200
		return goldenConfig{name: name, cfg: cfg}
	}
	return []goldenConfig{
		mk("single8", core.SingleCluster8Way()),
		mk("dual4x2", core.DualCluster4Way()),
		mk("single4", core.SingleCluster4Way()),
		mk("dual2x2", core.DualCluster2Way()),
	}
}

func goldenOpts() experiment.Options {
	opts := experiment.DefaultOptions()
	opts.Instructions = goldenInstrs
	opts.ProfileInstructions = 15_000
	return opts
}

func TestGoldenStats(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			// One local-scheduler binary per workload: it exercises dual
			// distribution, transfer buffers, and (on the starved two-way
			// machine) the replay path.
			opts := goldenOpts()
			b := workload.ByName(w.Name)
			mp, _, err := experiment.Compile(b, partition.Local{}, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, gc := range goldenConfigs() {
				gc := gc
				t.Run(gc.name, func(t *testing.T) {
					stats, err := experiment.Simulate(mp, b, gc.cfg, opts)
					if err != nil {
						t.Fatal(err)
					}
					checkGolden(t, goldenPath(w.Name, gc.name), stats.Snapshot())
				})
			}
		})
	}
}

// TestGoldenStatsBatch replays the whole golden matrix through the batched
// path: one materialized trace artifact per workload, core.RunBatch over the
// four canonical machines, each member's snapshot compared against the same
// fixtures the generator-fed suite uses. Byte-identical fixtures here are
// the tentpole guarantee — materialization, cursor replay, and cross-member
// slab recycling are all invisible to the simulation.
func TestGoldenStatsBatch(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			opts := goldenOpts()
			b := workload.ByName(w.Name)
			mp, _, err := experiment.Compile(b, partition.Local{}, opts)
			if err != nil {
				t.Fatal(err)
			}
			art, err := trace.Materialize(mp, b.NewDriver(opts.Seed), goldenInstrs)
			if err != nil {
				t.Fatal(err)
			}
			gcs := goldenConfigs()
			cfgs := make([]core.Config, len(gcs))
			for i, gc := range gcs {
				cfgs[i] = gc.cfg
			}
			stats, err := core.RunBatch(cfgs, art)
			if err != nil {
				t.Fatal(err)
			}
			for i, gc := range gcs {
				checkGolden(t, goldenPath(w.Name, gc.name), stats[i].Snapshot())
			}
		})
	}
}

func goldenPath(bench, config string) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_%s.json", bench, config))
}

// checkGolden compares the snapshot against the fixture byte-for-byte (both
// sides marshalled by the same code path), or rewrites the fixture under
// -update.
func checkGolden(t *testing.T, path string, snap core.StatsSnapshot) {
	t.Helper()
	got, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stats diverge from %s:\n%s", path, diffLines(string(want), string(got)))
	}
}

// diffLines renders the first differing lines of two texts, enough to see
// which counters moved without dumping both snapshots whole.
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var sb strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&sb, "  line %d: want %q, got %q\n", i+1, w, g)
		if shown++; shown >= 12 {
			sb.WriteString("  ...\n")
			break
		}
	}
	return sb.String()
}
