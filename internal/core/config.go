// Package core implements the cycle-level multicluster processor simulator
// of the paper: a dynamically-scheduled, superscalar machine whose register
// files, dispatch queues, and functional units can be partitioned across
// clusters, with dual-distributed instructions cooperating through operand
// and result transfer buffers (§2). A single-cluster configuration models
// the paper's baseline; a dual-cluster configuration models the proposed
// architecture.
package core

import (
	"fmt"

	"multicluster/internal/bpred"
	"multicluster/internal/cache"
	"multicluster/internal/isa"
)

// Config describes one processor configuration. Per-cluster quantities
// (QueueSize, IntRegs, FPRegs, Rules, buffers) apply to each cluster.
type Config struct {
	// Clusters is 1 (the paper's baseline) or 2 (the multicluster).
	Clusters int `json:"clusters"`
	// Assignment maps architectural registers to clusters; ignored when
	// Clusters is 1.
	Assignment isa.Assignment `json:"assignment"`
	// FetchWidth is the maximum instructions fetched and distributed per
	// cycle (12 in the paper).
	FetchWidth int `json:"fetch_width"`
	// RetireWidth is the maximum instructions retired per cycle (8).
	RetireWidth int `json:"retire_width"`
	// QueueSize is the dispatch-queue capacity per cluster (128 single,
	// 64 per cluster dual).
	QueueSize int `json:"queue_size"`
	// IntRegs and FPRegs are the physical register file sizes per cluster
	// (128/128 single, 64/64 per cluster dual).
	IntRegs int `json:"int_regs"`
	FPRegs  int `json:"fp_regs"`
	// Rules are the per-cluster issue limits (Table 1).
	Rules isa.IssueRules `json:"rules"`
	// OperandBuffer and ResultBuffer are the per-cluster transfer buffer
	// capacities (8 and 8).
	OperandBuffer int `json:"operand_buffer"`
	ResultBuffer  int `json:"result_buffer"`
	// ICache and DCache configure the caches (64 KB two-way, 16-cycle
	// memory latency).
	ICache cache.Config `json:"icache"`
	DCache cache.Config `json:"dcache"`
	// Predictor configures the McFarling combining predictor.
	Predictor bpred.Config `json:"predictor"`
	// LoadDelaySlots is the number of load-delay slots (1 in Table 1).
	LoadDelaySlots int `json:"load_delay_slots"`
	// ReplayWatchdog is the number of consecutive cycles without any
	// issue, retire, or distribution before an instruction-replay
	// exception is raised to break a transfer-buffer deadlock.
	ReplayWatchdog int `json:"replay_watchdog"`
	// ReplayPenalty is the fetch-restart penalty of a replay exception.
	ReplayPenalty int `json:"replay_penalty"`
	// MaxCycles aborts runaway simulations; zero means no limit.
	MaxCycles int64 `json:"max_cycles"`
	// MasterSelect chooses how the master cluster of a dual-distributed
	// instruction is picked; the zero value is MasterMajority, the paper's
	// policy.
	MasterSelect MasterPolicy `json:"master_select"`
	// Reassignments are compiler hints for dynamic register reassignment
	// (§6); empty for the paper's static-assignment evaluation.
	Reassignments []Reassignment `json:"reassignments,omitempty"`
	// UnorderedMemory disables store→load dependence tracking. By default
	// a load whose address matches an older in-flight store waits until
	// one cycle after that store issues (store-queue forwarding); with
	// UnorderedMemory the load issues regardless, the most aggressive
	// reading of the paper's "all instructions may be speculatively
	// executed".
	UnorderedMemory bool `json:"unordered_memory,omitempty"`
	// CollectProfile enables per-static-instruction execution counters
	// (execution count, accumulated issue delay, mispredicts), retrievable
	// from Stats.Profile after the run.
	CollectProfile bool `json:"collect_profile,omitempty"`
	// UnifiedBuffer merges each cluster's operand and result transfer
	// buffers into one pool of OperandBuffer+ResultBuffer entries. The
	// paper keeps them separate "to reduce implementation complexity and
	// to reduce the number of times an instruction-replay exception is
	// required" (§2.1); this knob exists to measure that choice.
	UnifiedBuffer bool `json:"unified_buffer,omitempty"`
}

// MasterPolicy selects the cluster that executes the computation of a
// dual-distributed instruction.
type MasterPolicy uint8

const (
	// MasterMajority picks the cluster holding the majority of the named
	// local registers (the paper's policy; ties break toward the less
	// loaded cluster).
	MasterMajority MasterPolicy = iota
	// MasterFirstSource picks the home cluster of the first local source
	// register (destination-blind), an ablation baseline.
	MasterFirstSource
	// MasterAlternate alternates clusters regardless of operand placement,
	// maximizing transfers; the pathological baseline.
	MasterAlternate
)

func (m MasterPolicy) String() string {
	switch m {
	case MasterFirstSource:
		return "first-source"
	case MasterAlternate:
		return "alternate"
	default:
		return "majority"
	}
}

// MarshalText implements encoding.TextMarshaler using the String form.
func (m MasterPolicy) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (m *MasterPolicy) UnmarshalText(text []byte) error {
	switch string(text) {
	case "majority", "":
		*m = MasterMajority
	case "first-source":
		*m = MasterFirstSource
	case "alternate":
		*m = MasterAlternate
	default:
		return fmt.Errorf("core: unknown master policy %q", text)
	}
	return nil
}

// bufferBlockCycles is how long the oldest unissued instruction must sit
// blocked purely on transfer-buffer space before an instruction-replay
// exception fires. Short, because the condition is exact: the blocking
// entries belong to younger instructions and can never drain first.
const bufferBlockCycles = 4

// SingleCluster8Way returns the paper's baseline: an eight-way issue,
// single-cluster processor with a 128-entry dispatch queue and 128+128
// physical registers.
func SingleCluster8Way() Config {
	return Config{
		Clusters:       1,
		Assignment:     isa.DefaultAssignment(),
		FetchWidth:     12,
		RetireWidth:    8,
		QueueSize:      128,
		IntRegs:        128,
		FPRegs:         128,
		Rules:          isa.SingleClusterRules(),
		OperandBuffer:  8,
		ResultBuffer:   8,
		ICache:         cache.Default64K(),
		DCache:         cache.Default64K(),
		Predictor:      bpred.DefaultConfig(),
		LoadDelaySlots: 1,
		ReplayWatchdog: 64,
		ReplayPenalty:  4,
	}
}

// DualCluster4Way returns the paper's dual-cluster processor: two four-way
// clusters with 64-entry dispatch queues, 64+64 physical registers, and
// eight-entry operand and result transfer buffers per cluster.
func DualCluster4Way() Config {
	cfg := SingleCluster8Way()
	cfg.Clusters = 2
	cfg.QueueSize = 64
	cfg.IntRegs = 64
	cfg.FPRegs = 64
	cfg.Rules = isa.DualClusterRules()
	return cfg
}

// SingleCluster4Way returns the four-way single-cluster configuration used
// alongside the Palacharla cycle-time anchors. Its aggregate resources
// match DualCluster2Way: a 64-entry queue and 96+96 physical registers
// (each two-way cluster needs at least ~34 registers to back the
// architectural state, so the aggregate register file cannot shrink all
// the way to 64).
func SingleCluster4Way() Config {
	cfg := SingleCluster8Way()
	cfg.QueueSize = 64
	cfg.IntRegs = 96
	cfg.FPRegs = 96
	cfg.Rules = isa.FourWaySingleRules()
	return cfg
}

// DualCluster2Way returns a dual-cluster machine of aggregate width four,
// resource-matched to SingleCluster4Way.
func DualCluster2Way() Config {
	cfg := DualCluster4Way()
	cfg.QueueSize = 32
	cfg.IntRegs = 48
	cfg.FPRegs = 48
	cfg.Rules = isa.TwoWayDualRules()
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Clusters != 1 && c.Clusters != 2 {
		return fmt.Errorf("core: Clusters must be 1 or 2, got %d", c.Clusters)
	}
	if c.FetchWidth <= 0 || c.RetireWidth <= 0 || c.QueueSize <= 0 {
		return fmt.Errorf("core: non-positive width/queue in %+v", c)
	}
	if err := c.Rules.Validate(); err != nil {
		return err
	}
	// Each cluster must back its visible architectural registers (its
	// locals plus the globals) with physical registers and leave headroom.
	minInt, minFP := 34, 34
	if c.IntRegs < minInt || c.FPRegs < minFP {
		return fmt.Errorf("core: physical register files too small (%d int, %d fp)", c.IntRegs, c.FPRegs)
	}
	if c.Clusters == 2 && (c.OperandBuffer <= 0 || c.ResultBuffer <= 0) {
		return fmt.Errorf("core: dual-cluster configuration needs transfer buffers")
	}
	// The majority policy guarantees at most one forwarded operand per
	// instruction; the ablation policies can demand two distinct ones,
	// which a single-entry buffer could never satisfy.
	if c.Clusters == 2 && c.MasterSelect != MasterMajority && c.OperandBuffer < 2 && !c.UnifiedBuffer {
		return fmt.Errorf("core: master policy %v needs an operand buffer of at least 2 entries", c.MasterSelect)
	}
	if c.ReplayWatchdog <= 0 {
		return fmt.Errorf("core: ReplayWatchdog must be positive")
	}
	return nil
}
