package core

import (
	"testing"

	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

func TestDynamicReassignmentSwitchesScheme(t *testing.T) {
	// Phase 1 uses registers that are all cluster-0 under even/odd; after
	// the hint the machine runs under low/high, where the same registers
	// split across clusters. The add after the switch must dual-distribute
	// under low/high semantics (r2 and r20 in different clusters).
	instrs := []isa.Instruction{
		lda(r(2), 1),           // 0: phase 1
		lda(r(4), 2),           // 1
		add(r(0), r(2), r(4)),  // 2: all-even: single under even/odd
		lda(r(20), 3),          // 3: reassignment point (before this)
		add(r(2), r(2), r(20)), // 4: r2(low)=c0, r20(high)=c1 under low/high
	}
	cfg := perfectCaches(DualCluster4Way())
	cfg.Reassignments = []Reassignment{{AtIndex: 3, To: isa.LowHighAssignment()}}
	retired, stats := run(t, cfg, instrs, nil)

	if stats.Reassign.Applied != 1 {
		t.Fatalf("reassignments applied = %d, want 1", stats.Reassign.Applied)
	}
	if stats.Reassign.MigratedRegs == 0 || stats.Reassign.MigrateCycles == 0 {
		t.Errorf("no migration cost recorded: %+v", stats.Reassign)
	}
	// Phase-1 add: single-distributed (even/odd, all cluster 0).
	if retired[2].dual {
		t.Error("phase-1 add dual-distributed under even/odd")
	}
	// Phase-2 add spans low/high clusters: dual.
	if !retired[4].dual {
		t.Error("phase-2 add not dual-distributed under low/high")
	}
	// The switch serializes: everything before it retired before the
	// phase-2 instructions were distributed.
	if retired[3].master.distributedAt <= retired[2].doneCycle {
		t.Errorf("switch did not drain: phase-2 distributed at %d, phase-1 done at %d",
			retired[3].master.distributedAt, retired[2].doneCycle)
	}
}

func TestReassignmentFiresOnce(t *testing.T) {
	// A loop over the hint index must not re-trigger the switch.
	instrs := []isa.Instruction{
		lda(r(2), 1),
		{Op: isa.BNE, Src1: r(2), Target: 0, MemID: -1, BrID: 0},
	}
	var es []trace.Entry
	for i := 0; i < 10; i++ {
		es = append(es, trace.Entry{Index: 0, Instr: &instrs[0]})
		es = append(es, trace.Entry{Index: 1, Instr: &instrs[1], Taken: i < 9})
	}
	cfg := perfectCaches(DualCluster4Way())
	cfg.Reassignments = []Reassignment{{AtIndex: 0, To: isa.LowHighAssignment()}}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reassign.Applied != 1 {
		t.Errorf("hint applied %d times, want once", stats.Reassign.Applied)
	}
	if stats.Instructions != int64(len(es)) {
		t.Errorf("retired %d of %d", stats.Instructions, len(es))
	}
}

func TestNoReassignmentsZeroCost(t *testing.T) {
	instrs := []isa.Instruction{lda(r(2), 1)}
	_, stats := run(t, dual(t), instrs, nil)
	if stats.Reassign != (ReassignStats{}) {
		t.Errorf("reassignment stats non-zero without hints: %+v", stats.Reassign)
	}
}
