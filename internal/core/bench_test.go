package core

import (
	"math/rand"
	"testing"

	"multicluster/internal/trace"
)

// benchStreamInstrs is the dynamic length of the microbenchmark stream —
// long enough to amortize processor construction, short enough that every
// configuration finishes a benchmark iteration in milliseconds.
const benchStreamInstrs = 30_000

// benchConfigs are the canonical machines plus the starved-buffer regime,
// whose replay exceptions keep the squash/refetch path on the scoreboard.
func benchConfigs() []struct {
	name string
	cfg  Config
} {
	starved := DualCluster4Way()
	starved.OperandBuffer, starved.ResultBuffer = 1, 1
	return []struct {
		name string
		cfg  Config
	}{
		{"single8", SingleCluster8Way()},
		{"dual4x2", DualCluster4Way()},
		{"single4", SingleCluster4Way()},
		{"dual2x2", DualCluster2Way()},
		{"dual4x2-starved", starved},
	}
}

// BenchmarkProcessor measures the simulator's raw per-event cost: one fixed
// pseudo-random instruction stream through each machine, reporting
// ns/instr, allocs (via -benchmem), and simulated MIPS. scripts/benchdiff
// runs this suite and writes BENCH_core.json; the committed
// BENCH_baseline.json is the regression reference for `make bench`.
func BenchmarkProcessor(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	_, entries := randomStream(rng, benchStreamInstrs)
	for _, bc := range benchConfigs() {
		b.Run(bc.name, func(b *testing.B) {
			cfg := bc.cfg
			cfg.MaxCycles = benchStreamInstrs * 200
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := New(cfg, &trace.SliceReader{Entries: entries})
				if err != nil {
					b.Fatal(err)
				}
				stats, err := p.Run()
				if err != nil {
					b.Fatal(err)
				}
				if stats.Instructions != benchStreamInstrs {
					b.Fatalf("retired %d of %d", stats.Instructions, benchStreamInstrs)
				}
			}
			b.StopTimer()
			perInstr := float64(b.Elapsed().Nanoseconds()) / float64(int64(b.N)*benchStreamInstrs)
			b.ReportMetric(benchStreamInstrs, "instrs/op")
			b.ReportMetric(perInstr, "ns/instr")
			if perInstr > 0 {
				b.ReportMetric(1e3/perInstr, "MIPS")
			}
		})
	}
}
