package core

import (
	"math/rand"
	"testing"

	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// randomStream builds a random but well-formed instruction stream: register
// operations over arbitrary registers, loads/stores with random addresses,
// and conditional branches with random outcomes. The static "program" is a
// flat array the entries index.
func randomStream(rng *rand.Rand, n int) ([]isa.Instruction, []trace.Entry) {
	anyReg := func() isa.Reg {
		if rng.Intn(2) == 0 {
			return isa.IntReg(rng.Intn(31)) // avoid r31 (zero)
		}
		return isa.FPReg(rng.Intn(31))
	}
	intReg := func() isa.Reg { return isa.IntReg(rng.Intn(31)) }
	fpReg := func() isa.Reg { return isa.FPReg(rng.Intn(31)) }

	instrs := make([]isa.Instruction, n)
	entries := make([]trace.Entry, n)
	memID, brID := 0, 0
	for i := 0; i < n; i++ {
		var in isa.Instruction
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			in = isa.Instruction{Op: isa.ADD, Dst: intReg(), Src1: intReg(), Src2: intReg()}
		case 4:
			in = isa.Instruction{Op: isa.MUL, Dst: intReg(), Src1: intReg(), Src2: intReg()}
		case 5:
			in = isa.Instruction{Op: isa.FMUL, Dst: fpReg(), Src1: fpReg(), Src2: fpReg()}
		case 6:
			in = isa.Instruction{Op: isa.FDIV, Dst: fpReg(), Src1: fpReg(), Src2: fpReg()}
		case 7:
			in = isa.Instruction{Op: isa.LDW, Dst: intReg(), Src1: intReg(), MemID: memID}
			memID++
		case 8:
			in = isa.Instruction{Op: isa.STW, Src1: intReg(), Src2: anyReg(), MemID: memID}
			if in.Src2.IsFP() {
				in.Op = isa.STF
			}
			memID++
		case 9:
			in = isa.Instruction{Op: isa.BNE, Src1: intReg(), Target: rng.Intn(n), BrID: brID}
			brID++
		}
		if in.MemID == 0 && !in.Op.Class().IsMem() {
			in.MemID = -1
		}
		if in.BrID == 0 && !in.Op.IsCondBranch() {
			in.BrID = -1
		}
		instrs[i] = in
		entries[i] = trace.Entry{
			Index: i,
			Instr: &instrs[i],
			Addr:  uint64(rng.Intn(1 << 22)),
			Taken: rng.Intn(2) == 0,
		}
	}
	return instrs, entries
}

// byteStream decodes fuzzer-provided bytes into a well-formed instruction
// stream, mirroring randomStream's instruction mix but driven entirely by
// the input so the fuzzer can steer the machine into rare schedules.
func byteStream(data []byte) ([]isa.Instruction, []trace.Entry) {
	n := len(data)
	if n > 512 {
		n = 512
	}
	instrs := make([]isa.Instruction, n)
	entries := make([]trace.Entry, n)
	// Rolling hash over the input: each byte perturbs every later decision,
	// so small input mutations reach distinct machine states.
	h := uint64(1469598103934665603)
	next := func(b byte) uint64 {
		h ^= uint64(b)
		h *= 1099511628211
		return h
	}
	intReg := func(x uint64) isa.Reg { return isa.IntReg(int(x % 31)) }
	fpReg := func(x uint64) isa.Reg { return isa.FPReg(int(x % 31)) }
	memID, brID := 0, 0
	for i := 0; i < n; i++ {
		x := next(data[i])
		var in isa.Instruction
		switch x % 10 {
		case 0, 1, 2, 3:
			in = isa.Instruction{Op: isa.ADD, Dst: intReg(x >> 8), Src1: intReg(x >> 16), Src2: intReg(x >> 24)}
		case 4:
			in = isa.Instruction{Op: isa.MUL, Dst: intReg(x >> 8), Src1: intReg(x >> 16), Src2: intReg(x >> 24)}
		case 5:
			in = isa.Instruction{Op: isa.FMUL, Dst: fpReg(x >> 8), Src1: fpReg(x >> 16), Src2: fpReg(x >> 24)}
		case 6:
			in = isa.Instruction{Op: isa.FDIV, Dst: fpReg(x >> 8), Src1: fpReg(x >> 16), Src2: fpReg(x >> 24)}
		case 7:
			in = isa.Instruction{Op: isa.LDW, Dst: intReg(x >> 8), Src1: intReg(x >> 16), MemID: memID}
			memID++
		case 8:
			in = isa.Instruction{Op: isa.STW, Src1: intReg(x >> 8), Src2: intReg(x >> 16), MemID: memID}
			if x&(1<<40) != 0 {
				in.Op, in.Src2 = isa.STF, fpReg(x>>16)
			}
			memID++
		case 9:
			in = isa.Instruction{Op: isa.BNE, Src1: intReg(x >> 8), Target: int(x>>16) % n, BrID: brID}
			brID++
		}
		if in.MemID == 0 && !in.Op.Class().IsMem() {
			in.MemID = -1
		}
		if in.BrID == 0 && !in.Op.IsCondBranch() {
			in.BrID = -1
		}
		instrs[i] = in
		entries[i] = trace.Entry{
			Index: i,
			Instr: &instrs[i],
			Addr:  (x >> 32) % (1 << 22),
			Taken: x&(1<<48) != 0,
		}
	}
	return instrs, entries
}

// checkCycleInvariants asserts the machine laws that must hold after every
// cycle, not just at drain: transfer-buffer occupancy stays within the
// configured capacity, dispatch queues within QueueSize, physical-register
// free counts within the file size, and the replay machinery never lets a
// stall outlive its watchdog.
func checkCycleInvariants(t testing.TB, p *Processor) {
	t.Helper()
	cfg := &p.cfg
	for c := 0; c < cfg.Clusters; c++ {
		op, res := p.opBufUsed[c], p.resBufUsed[c]
		if op < 0 || res < 0 {
			t.Fatalf("cycle %d: negative buffer occupancy in cluster %d: op=%d res=%d", p.cycle, c, op, res)
		}
		if cfg.UnifiedBuffer {
			if op+res > cfg.OperandBuffer+cfg.ResultBuffer {
				t.Fatalf("cycle %d: unified buffer overflow in cluster %d: %d+%d > %d", p.cycle, c, op, res, cfg.OperandBuffer+cfg.ResultBuffer)
			}
		} else {
			if op > cfg.OperandBuffer {
				t.Fatalf("cycle %d: operand buffer overflow in cluster %d: %d > %d", p.cycle, c, op, cfg.OperandBuffer)
			}
			if res > cfg.ResultBuffer {
				t.Fatalf("cycle %d: result buffer overflow in cluster %d: %d > %d", p.cycle, c, res, cfg.ResultBuffer)
			}
		}
		if n := p.queueLen(c); n > cfg.QueueSize {
			t.Fatalf("cycle %d: cluster %d dispatch queue overflow: %d > %d", p.cycle, c, n, cfg.QueueSize)
		}
		if p.freeRegs[c][0] < 0 || p.freeRegs[c][0] > cfg.IntRegs {
			t.Fatalf("cycle %d: cluster %d int free-reg count out of range: %d", p.cycle, c, p.freeRegs[c][0])
		}
		if p.freeRegs[c][1] < 0 || p.freeRegs[c][1] > cfg.FPRegs {
			t.Fatalf("cycle %d: cluster %d fp free-reg count out of range: %d", p.cycle, c, p.freeRegs[c][1])
		}
	}
	// The just-simulated cycle is p.cycle-1. With work in flight, a stall
	// must trip the replay watchdog before it reaches ReplayWatchdog cycles.
	if p.activeLen() > 0 {
		if gap := (p.cycle - 1) - p.lastProgress; gap >= int64(cfg.ReplayWatchdog) {
			t.Fatalf("cycle %d: %d-cycle stall outlived the %d-cycle replay watchdog", p.cycle, gap, cfg.ReplayWatchdog)
		}
	}
	if p.bufBlockedRun >= bufferBlockCycles {
		t.Fatalf("cycle %d: buffer-blocked run %d survived the %d-cycle replay trigger", p.cycle, p.bufBlockedRun, bufferBlockCycles)
	}
}

// machineInvariants runs a stream cycle by cycle, asserting the per-cycle
// invariants at every step plus strictly in-order retirement, then the
// conservation laws at drain: every instruction retires exactly once,
// physical-register free counts return to their initial values, the
// dispatch queues and active list drain, and the transfer-buffer occupancy
// ends at zero.
func machineInvariants(t testing.TB, cfg Config, entries []trace.Entry) Stats {
	t.Helper()
	p, err := New(cfg, &trace.SliceReader{Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	lastSeq := int64(-1)
	p.observe = func(d *dynInst) {
		if d.seq <= lastSeq {
			t.Fatalf("cycle %d: retirement out of sequence order: seq %d after %d", p.cycle, d.seq, lastSeq)
		}
		if d.squashed {
			t.Fatalf("cycle %d: squashed instruction seq %d retired", p.cycle, d.seq)
		}
		lastSeq = d.seq
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = int64(1) << 62
	}
	p.stats.Stop = StopTraceEnd
	for !p.drained() && p.cycle < maxCycles {
		if err := p.step(); err != nil {
			t.Fatalf("%v (stats %v)", err, p.stats)
		}
		checkCycleInvariants(t, p)
	}
	p.stats.Cycles = p.cycle
	p.stats.ICache = p.icache.Stats()
	p.stats.DCache = p.dcache.Stats()
	p.stats.Predictor = p.pred.Stats()
	stats := p.stats

	if p.cycle >= maxCycles {
		t.Fatalf("machine did not drain within %d cycles: %v", maxCycles, stats)
	}
	if stats.Instructions != int64(len(entries)) {
		t.Fatalf("retired %d of %d", stats.Instructions, len(entries))
	}
	for c := 0; c < cfg.Clusters; c++ {
		// With no in-flight instructions every physical register beyond
		// those backing the (current) architectural state must be free.
		want := [2]int{
			cfg.IntRegs - p.backedRegs(c, false),
			cfg.FPRegs - p.backedRegs(c, true),
		}
		if p.freeRegs[c] != want {
			t.Fatalf("cluster %d leaked physical registers: have %v, want %v", c, p.freeRegs[c], want)
		}
		if n := p.queueLen(c); n != 0 {
			t.Fatalf("cluster %d queue not drained: %d entries", c, n)
		}
	}
	if n := p.activeLen(); n != 0 {
		t.Fatalf("active list not drained: %d", n)
	}
	// Every release event is scheduled no later than the instruction's
	// done cycle + 1, so after a drain the full horizon has passed.
	p.releaseBufferEntries(p.cycle + 1)
	if p.opBufUsed[0]|p.opBufUsed[1]|p.resBufUsed[0]|p.resBufUsed[1] != 0 {
		t.Fatalf("transfer buffers leaked: op=%v res=%v", p.opBufUsed, p.resBufUsed)
	}
	return stats
}

func TestRandomStreamsSatisfyInvariants(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, entries := randomStream(rng, 600)
		for _, cfg := range []Config{
			SingleCluster8Way(),
			DualCluster4Way(),
			DualCluster2Way(),
		} {
			cfg.MaxCycles = 2_000_000
			machineInvariants(t, cfg, entries)
		}
	}
}

func TestRandomStreamsWithTinyBuffersReplayButComplete(t *testing.T) {
	// Starved transfer buffers force replays; the machine must still
	// retire everything and conserve resources through squashes.
	sawReplay := false
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, entries := randomStream(rng, 600)
		cfg := DualCluster4Way()
		cfg.OperandBuffer = 1
		cfg.ResultBuffer = 1
		cfg.MaxCycles = 4_000_000
		stats := machineInvariants(t, cfg, entries)
		if stats.Replays > 0 {
			sawReplay = true
		}
	}
	if !sawReplay {
		t.Error("no replays across 15 starved-buffer runs; the deadlock path went unexercised")
	}
}

func TestBufferBlockedYoungestIsNotADeadlock(t *testing.T) {
	// Regression: with single-entry buffers a long stream eventually blocks
	// the *youngest* in-flight instruction on buffer space held by older
	// instructions. That is a bounded transient — the holders drain on their
	// own — but the §2.1 replay trigger used to fire anyway and then fail
	// with "no younger instructions to squash".
	rng := rand.New(rand.NewSource(1))
	_, entries := randomStream(rng, 30_000)
	cfg := DualCluster4Way()
	cfg.OperandBuffer = 1
	cfg.ResultBuffer = 1
	cfg.MaxCycles = 10_000_000
	machineInvariants(t, cfg, entries)
}

func TestRandomStreamsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, entries := randomStream(rng, 600)
	cfg := DualCluster4Way()
	cfg.MaxCycles = 2_000_000
	a := machineInvariants(t, cfg, entries)
	b := machineInvariants(t, cfg, entries)
	if a.Cycles != b.Cycles || a.DualDist != b.DualDist || a.Replays != b.Replays {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestRandomStreamsUnderLowHighAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, entries := randomStream(rng, 600)
	cfg := DualCluster4Way()
	cfg.Assignment = isa.LowHighAssignment()
	cfg.MaxCycles = 2_000_000
	machineInvariants(t, cfg, entries)
}

func TestRandomStreamsWithReassignment(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	_, entries := randomStream(rng, 600)
	cfg := DualCluster4Way()
	cfg.MaxCycles = 4_000_000
	cfg.Reassignments = []Reassignment{
		{AtIndex: entries[300].Index, To: isa.LowHighAssignment()},
	}
	machineInvariants(t, cfg, entries)
}

// fuzzConfig derives a machine configuration from the selector byte: the
// fuzzer chooses the cluster count, buffer sizing (including the starved
// replay-heavy regime), buffer pooling, and the register-assignment scheme.
func fuzzConfig(sel byte) Config {
	var cfg Config
	if sel&1 != 0 {
		cfg = SingleCluster8Way()
	} else {
		cfg = DualCluster4Way()
	}
	if sel&2 != 0 {
		cfg.OperandBuffer, cfg.ResultBuffer = 1, 1
	}
	if sel&4 != 0 {
		cfg.UnifiedBuffer = true
		// The ablation policies need two operand entries under a non-unified
		// buffer; unified pools of 2 are valid.
	}
	if sel&8 != 0 {
		cfg.Assignment = isa.LowHighAssignment()
	}
	if sel&16 != 0 {
		cfg.MasterSelect = MasterAlternate
		if cfg.OperandBuffer < 2 && !cfg.UnifiedBuffer {
			cfg.OperandBuffer = 2
		}
	}
	cfg.MaxCycles = 2_000_000
	return cfg
}

// FuzzCore feeds byte-derived instruction streams through byte-derived
// configurations and asserts every machine invariant at every cycle. The
// seed corpus under testdata/fuzz/FuzzCore pins the regimes the unit tests
// care about (starved buffers, unified pools, alternate-master policy).
func FuzzCore(f *testing.F) {
	f.Add([]byte("multicluster"))
	f.Add([]byte{0x02, 7, 7, 8, 8, 9, 9, 7, 8, 9, 7, 8, 9})
	f.Add([]byte{0x14, 1, 2, 3, 4, 5, 6, 7, 8, 9, 0, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			t.Skip("need a selector byte and at least one instruction")
		}
		cfg := fuzzConfig(data[0])
		_, entries := byteStream(data[1:])
		machineInvariants(t, cfg, entries)
	})
}
