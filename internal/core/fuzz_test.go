package core

import (
	"math/rand"
	"testing"

	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// randomStream builds a random but well-formed instruction stream: register
// operations over arbitrary registers, loads/stores with random addresses,
// and conditional branches with random outcomes. The static "program" is a
// flat array the entries index.
func randomStream(rng *rand.Rand, n int) ([]isa.Instruction, []trace.Entry) {
	anyReg := func() isa.Reg {
		if rng.Intn(2) == 0 {
			return isa.IntReg(rng.Intn(31)) // avoid r31 (zero)
		}
		return isa.FPReg(rng.Intn(31))
	}
	intReg := func() isa.Reg { return isa.IntReg(rng.Intn(31)) }
	fpReg := func() isa.Reg { return isa.FPReg(rng.Intn(31)) }

	instrs := make([]isa.Instruction, n)
	entries := make([]trace.Entry, n)
	memID, brID := 0, 0
	for i := 0; i < n; i++ {
		var in isa.Instruction
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			in = isa.Instruction{Op: isa.ADD, Dst: intReg(), Src1: intReg(), Src2: intReg()}
		case 4:
			in = isa.Instruction{Op: isa.MUL, Dst: intReg(), Src1: intReg(), Src2: intReg()}
		case 5:
			in = isa.Instruction{Op: isa.FMUL, Dst: fpReg(), Src1: fpReg(), Src2: fpReg()}
		case 6:
			in = isa.Instruction{Op: isa.FDIV, Dst: fpReg(), Src1: fpReg(), Src2: fpReg()}
		case 7:
			in = isa.Instruction{Op: isa.LDW, Dst: intReg(), Src1: intReg(), MemID: memID}
			memID++
		case 8:
			in = isa.Instruction{Op: isa.STW, Src1: intReg(), Src2: anyReg(), MemID: memID}
			if in.Src2.IsFP() {
				in.Op = isa.STF
			}
			memID++
		case 9:
			in = isa.Instruction{Op: isa.BNE, Src1: intReg(), Target: rng.Intn(n), BrID: brID}
			brID++
		}
		if in.MemID == 0 && !in.Op.Class().IsMem() {
			in.MemID = -1
		}
		if in.BrID == 0 && !in.Op.IsCondBranch() {
			in.BrID = -1
		}
		instrs[i] = in
		entries[i] = trace.Entry{
			Index: i,
			Instr: &instrs[i],
			Addr:  uint64(rng.Intn(1 << 22)),
			Taken: rng.Intn(2) == 0,
		}
	}
	return instrs, entries
}

// machineInvariants runs a stream and checks conservation laws: every
// instruction retires exactly once, physical-register free counts return to
// their initial values, the dispatch queues and active list drain, and the
// transfer-buffer occupancy ends at zero.
func machineInvariants(t *testing.T, cfg Config, entries []trace.Entry) Stats {
	t.Helper()
	p, err := New(cfg, &trace.SliceReader{Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := p.Run()
	if err != nil {
		t.Fatalf("%v (stats %v)", err, stats)
	}
	if stats.Stop != StopTraceEnd {
		t.Fatalf("machine did not drain: %v", stats)
	}
	if stats.Instructions != int64(len(entries)) {
		t.Fatalf("retired %d of %d", stats.Instructions, len(entries))
	}
	for c := 0; c < cfg.Clusters; c++ {
		// With no in-flight instructions every physical register beyond
		// those backing the (current) architectural state must be free.
		want := [2]int{
			cfg.IntRegs - p.backedRegs(c, false),
			cfg.FPRegs - p.backedRegs(c, true),
		}
		if p.freeRegs[c] != want {
			t.Fatalf("cluster %d leaked physical registers: have %v, want %v", c, p.freeRegs[c], want)
		}
		if len(p.queue[c]) != 0 {
			t.Fatalf("cluster %d queue not drained: %d entries", c, len(p.queue[c]))
		}
	}
	if len(p.active) != 0 {
		t.Fatalf("active list not drained: %d", len(p.active))
	}
	p.computeBufferOccupancy(p.cycle + 1)
	if p.opBufUsed[0]|p.opBufUsed[1]|p.resBufUsed[0]|p.resBufUsed[1] != 0 {
		t.Fatalf("transfer buffers leaked: op=%v res=%v", p.opBufUsed, p.resBufUsed)
	}
	return stats
}

func TestRandomStreamsSatisfyInvariants(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, entries := randomStream(rng, 600)
		for _, cfg := range []Config{
			SingleCluster8Way(),
			DualCluster4Way(),
			DualCluster2Way(),
		} {
			cfg.MaxCycles = 2_000_000
			machineInvariants(t, cfg, entries)
		}
	}
}

func TestRandomStreamsWithTinyBuffersReplayButComplete(t *testing.T) {
	// Starved transfer buffers force replays; the machine must still
	// retire everything and conserve resources through squashes.
	sawReplay := false
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, entries := randomStream(rng, 600)
		cfg := DualCluster4Way()
		cfg.OperandBuffer = 1
		cfg.ResultBuffer = 1
		cfg.MaxCycles = 4_000_000
		stats := machineInvariants(t, cfg, entries)
		if stats.Replays > 0 {
			sawReplay = true
		}
	}
	if !sawReplay {
		t.Error("no replays across 15 starved-buffer runs; the deadlock path went unexercised")
	}
}

func TestRandomStreamsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	_, entries := randomStream(rng, 600)
	cfg := DualCluster4Way()
	cfg.MaxCycles = 2_000_000
	a := machineInvariants(t, cfg, entries)
	b := machineInvariants(t, cfg, entries)
	if a.Cycles != b.Cycles || a.DualDist != b.DualDist || a.Replays != b.Replays {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestRandomStreamsUnderLowHighAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	_, entries := randomStream(rng, 600)
	cfg := DualCluster4Way()
	cfg.Assignment = isa.LowHighAssignment()
	cfg.MaxCycles = 2_000_000
	machineInvariants(t, cfg, entries)
}

func TestRandomStreamsWithReassignment(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	_, entries := randomStream(rng, 600)
	cfg := DualCluster4Way()
	cfg.MaxCycles = 4_000_000
	cfg.Reassignments = []Reassignment{
		{AtIndex: entries[300].Index, To: isa.LowHighAssignment()},
	}
	machineInvariants(t, cfg, entries)
}
