package core

import (
	"fmt"

	"multicluster/internal/bpred"
	"multicluster/internal/cache"
)

// StopReason reports why a simulation ended.
type StopReason string

const (
	// StopTraceEnd means the trace was consumed and the machine drained.
	StopTraceEnd StopReason = "trace-end"
	// StopMaxCycles means the MaxCycles safety limit was hit.
	StopMaxCycles StopReason = "max-cycles"
)

// ClusterStats aggregates per-cluster activity.
type ClusterStats struct {
	// IssuedUops counts copies issued from this cluster's dispatch queue
	// (masters and slaves).
	IssuedUops int64
	// QueueOccupancySum accumulates dispatch-queue occupancy each cycle;
	// divide by Cycles for the mean.
	QueueOccupancySum int64
	// Distributed counts copies inserted into this cluster's queue.
	Distributed int64
}

// FetchStalls break down the cycles in which nothing could be fetched.
type FetchStalls struct {
	// ICacheMiss cycles waiting on instruction-cache fills.
	ICacheMiss int64
	// Mispredict cycles waiting for a mispredicted branch to resolve.
	Mispredict int64
	// QueueFull cycles blocked by a full dispatch queue.
	QueueFull int64
	// RegsFull cycles blocked waiting for a free physical register.
	RegsFull int64
	// Replay cycles of replay-exception restart penalty.
	Replay int64
}

// Stats is the result of one simulation run.
type Stats struct {
	Cycles       int64
	Instructions int64 // logical instructions retired
	Fetched      int64

	// SingleDist and DualDist count logical instructions distributed to
	// one and to both clusters.
	SingleDist, DualDist int64
	// OperandForwards and ResultForwards count inter-cluster transfers.
	OperandForwards, ResultForwards int64
	// Replays counts instruction-replay exceptions.
	Replays int64
	// ReplayedInstructions counts instructions squashed and refetched.
	ReplayedInstructions int64

	// CondBranches and Mispredicts count conditional branches retired and
	// mispredicted.
	CondBranches, Mispredicts int64
	// MispredResolveSum accumulates, over mispredicted branches, the cycles
	// from distribution to resolution — the fetch-stall window each one
	// causes.
	MispredResolveSum int64

	// DisorderSum accumulates, over every issued computation, how far
	// beyond it the youngest already-issued instruction was (0 when issue
	// happens in order); divide by issued instructions for the paper's
	// "issue disorder" trend.
	DisorderSum int64
	IssuedOps   int64

	ICache, DCache cache.Stats
	Predictor      bpred.Stats

	Fetch    FetchStalls
	Cluster  [2]ClusterStats
	Reassign ReassignStats

	// Profile holds per-static-instruction counters when
	// Config.CollectProfile is set, keyed by static instruction index.
	Profile map[int]PCStat

	Stop StopReason
}

// PCStat aggregates the dynamic behaviour of one static instruction.
type PCStat struct {
	// Count is how many times the instruction retired.
	Count int64
	// IssueDelaySum accumulates distribute→issue latency of the master
	// copy; divide by Count for the mean queueing delay.
	IssueDelaySum int64
	// DualCount is how many executions were dual-distributed.
	DualCount int64
	// Mispredicts counts mispredictions (conditional branches only).
	Mispredicts int64
}

// IPC returns retired logical instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// DualFraction returns the fraction of retired instructions that were
// dual-distributed.
func (s Stats) DualFraction() float64 {
	if s.SingleDist+s.DualDist == 0 {
		return 0
	}
	return float64(s.DualDist) / float64(s.SingleDist+s.DualDist)
}

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// MeanDisorder returns the average issue disorder per issued operation.
func (s Stats) MeanDisorder() float64 {
	if s.IssuedOps == 0 {
		return 0
	}
	return float64(s.DisorderSum) / float64(s.IssuedOps)
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"cycles=%d instrs=%d ipc=%.3f dual=%.1f%% fwd(op=%d res=%d) replays=%d mispred=%.2f%% dmiss=%.2f%% disorder=%.2f stop=%s",
		s.Cycles, s.Instructions, s.IPC(), 100*s.DualFraction(),
		s.OperandForwards, s.ResultForwards, s.Replays,
		100*s.MispredictRate(), 100*s.DCache.MissRate(), s.MeanDisorder(), s.Stop)
}
