package core

import (
	"fmt"

	"multicluster/internal/bpred"
	"multicluster/internal/cache"
)

// StopReason reports why a simulation ended.
type StopReason string

const (
	// StopTraceEnd means the trace was consumed and the machine drained.
	StopTraceEnd StopReason = "trace-end"
	// StopMaxCycles means the MaxCycles safety limit was hit.
	StopMaxCycles StopReason = "max-cycles"
)

// ClusterStats aggregates per-cluster activity.
type ClusterStats struct {
	// IssuedUops counts copies issued from this cluster's dispatch queue
	// (masters and slaves).
	IssuedUops int64 `json:"issued_uops"`
	// QueueOccupancySum accumulates dispatch-queue occupancy each cycle;
	// divide by Cycles for the mean.
	QueueOccupancySum int64 `json:"queue_occupancy_sum"`
	// Distributed counts copies inserted into this cluster's queue.
	Distributed int64 `json:"distributed"`
}

// FetchStalls break down the cycles in which nothing could be fetched.
type FetchStalls struct {
	// ICacheMiss cycles waiting on instruction-cache fills.
	ICacheMiss int64 `json:"icache_miss"`
	// Mispredict cycles waiting for a mispredicted branch to resolve.
	Mispredict int64 `json:"mispredict"`
	// QueueFull cycles blocked by a full dispatch queue.
	QueueFull int64 `json:"queue_full"`
	// RegsFull cycles blocked waiting for a free physical register.
	RegsFull int64 `json:"regs_full"`
	// Replay cycles of replay-exception restart penalty.
	Replay int64 `json:"replay"`
}

// Stats is the result of one simulation run.
type Stats struct {
	Cycles       int64 `json:"cycles"`
	Instructions int64 `json:"instructions"` // logical instructions retired
	Fetched      int64 `json:"fetched"`

	// SingleDist and DualDist count logical instructions distributed to
	// one and to both clusters.
	SingleDist int64 `json:"single_dist"`
	DualDist   int64 `json:"dual_dist"`
	// OperandForwards and ResultForwards count inter-cluster transfers.
	OperandForwards int64 `json:"operand_forwards"`
	ResultForwards  int64 `json:"result_forwards"`
	// Replays counts instruction-replay exceptions.
	Replays int64 `json:"replays"`
	// ReplayedInstructions counts instructions squashed and refetched.
	ReplayedInstructions int64 `json:"replayed_instructions"`

	// CondBranches and Mispredicts count conditional branches retired and
	// mispredicted.
	CondBranches int64 `json:"cond_branches"`
	Mispredicts  int64 `json:"mispredicts"`
	// MispredResolveSum accumulates, over mispredicted branches, the cycles
	// from distribution to resolution — the fetch-stall window each one
	// causes.
	MispredResolveSum int64 `json:"mispred_resolve_sum"`

	// DisorderSum accumulates, over every issued computation, how far
	// beyond it the youngest already-issued instruction was (0 when issue
	// happens in order); divide by issued instructions for the paper's
	// "issue disorder" trend.
	DisorderSum int64 `json:"disorder_sum"`
	IssuedOps   int64 `json:"issued_ops"`

	ICache    cache.Stats `json:"icache"`
	DCache    cache.Stats `json:"dcache"`
	Predictor bpred.Stats `json:"predictor"`

	Fetch    FetchStalls     `json:"fetch_stalls"`
	Cluster  [2]ClusterStats `json:"clusters"`
	Reassign ReassignStats   `json:"reassign"`

	// Profile holds per-static-instruction counters when
	// Config.CollectProfile is set, keyed by static instruction index.
	Profile map[int]PCStat `json:"profile,omitempty"`

	Stop StopReason `json:"stop"`
}

// PCStat aggregates the dynamic behaviour of one static instruction.
type PCStat struct {
	// Count is how many times the instruction retired.
	Count int64 `json:"count"`
	// IssueDelaySum accumulates distribute→issue latency of the master
	// copy; divide by Count for the mean queueing delay.
	IssueDelaySum int64 `json:"issue_delay_sum"`
	// DualCount is how many executions were dual-distributed.
	DualCount int64 `json:"dual_count"`
	// Mispredicts counts mispredictions (conditional branches only).
	Mispredicts int64 `json:"mispredicts"`
}

// IPC returns retired logical instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// DualFraction returns the fraction of retired instructions that were
// dual-distributed.
func (s Stats) DualFraction() float64 {
	if s.SingleDist+s.DualDist == 0 {
		return 0
	}
	return float64(s.DualDist) / float64(s.SingleDist+s.DualDist)
}

// MispredictRate returns mispredictions per conditional branch.
func (s Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// MeanDisorder returns the average issue disorder per issued operation.
func (s Stats) MeanDisorder() float64 {
	if s.IssuedOps == 0 {
		return 0
	}
	return float64(s.DisorderSum) / float64(s.IssuedOps)
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"cycles=%d instrs=%d ipc=%.3f dual=%.1f%% fwd(op=%d res=%d) replays=%d mispred=%.2f%% dmiss=%.2f%% disorder=%.2f stop=%s",
		s.Cycles, s.Instructions, s.IPC(), 100*s.DualFraction(),
		s.OperandForwards, s.ResultForwards, s.Replays,
		100*s.MispredictRate(), 100*s.DCache.MissRate(), s.MeanDisorder(), s.Stop)
}
