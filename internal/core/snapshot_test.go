package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"multicluster/internal/isa"
)

// TestConfigJSONRoundTrip proves a Config survives the API boundary intact,
// including the types with custom marshalers (Assignment, MasterPolicy,
// predictor Kind) and nested reassignment hints.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DualCluster4Way()
	cfg.MasterSelect = MasterFirstSource
	cfg.UnorderedMemory = true
	cfg.Reassignments = []Reassignment{{AtIndex: 7, To: isa.LowHighAssignment()}}

	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("round trip changed the config:\n  in:  %+v\n  out: %+v", cfg, back)
	}

	// The encoding must be canonical: re-marshaling the decoded config
	// yields identical bytes (the sweep service hashes these).
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(data) != string(data2) {
		t.Fatalf("encoding not canonical:\n  %s\n  %s", data, data2)
	}
}

// TestSnapshotDerived checks the derived metrics of a snapshot against the
// Stats methods they mirror.
func TestSnapshotDerived(t *testing.T) {
	s := Stats{
		Cycles:               200,
		Instructions:         400,
		SingleDist:           300,
		DualDist:             100,
		CondBranches:         50,
		Mispredicts:          5,
		ReplayedInstructions: 40,
		DisorderSum:          90,
		IssuedOps:            450,
	}
	s.Cluster[0].QueueOccupancySum = 2000
	s.Cluster[1].QueueOccupancySum = 1000
	snap := s.Snapshot()
	for _, tc := range []struct {
		name      string
		got, want float64
	}{
		{"ipc", snap.IPC, 2.0},
		{"dual_fraction", snap.DualFraction, 0.25},
		{"mispredict_rate", snap.MispredictRate, 0.1},
		{"replay_rate", snap.ReplayRate, 0.1},
		{"mean_disorder", snap.MeanDisorder, 0.2},
		{"queue0", snap.MeanQueueOccupancy[0], 10},
		{"queue1", snap.MeanQueueOccupancy[1], 5},
	} {
		if tc.got != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
	var decoded StatsSnapshot
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(snap, decoded) {
		t.Fatalf("snapshot round trip changed values")
	}
}
