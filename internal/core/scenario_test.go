package core

import (
	"testing"

	"multicluster/internal/isa"
	"multicluster/internal/trace"
)

// run executes a hand-built instruction slice on cfg and returns the
// retired instructions in order plus the stats.
func run(t *testing.T, cfg Config, instrs []isa.Instruction, entries func(int, *isa.Instruction) trace.Entry) ([]*dynInst, Stats) {
	t.Helper()
	es := make([]trace.Entry, len(instrs))
	for i := range instrs {
		if entries != nil {
			es[i] = entries(i, &instrs[i])
		} else {
			es[i] = trace.Entry{Index: i, Instr: &instrs[i]}
		}
	}
	p, err := New(cfg, &trace.SliceReader{Entries: es})
	if err != nil {
		t.Fatal(err)
	}
	var retired []*dynInst
	p.observe = func(d *dynInst) { retired = append(retired, d) }
	stats, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stop != StopTraceEnd {
		t.Fatalf("simulation did not drain: %v", stats)
	}
	return retired, stats
}

func dual(t *testing.T) Config {
	t.Helper()
	return perfectCaches(DualCluster4Way())
}

// perfectCaches zeroes the miss latencies so timing tests observe pure
// pipeline behaviour; cache effects are tested separately.
func perfectCaches(cfg Config) Config {
	cfg.ICache.MissLatency = 0
	cfg.DCache.MissLatency = 0
	return cfg
}

// r/f build register names: even integer registers live in cluster 0, odd
// in cluster 1 (the evaluation's assignment).
func r(n int) isa.Reg { return isa.IntReg(n) }

func lda(dst isa.Reg, imm int64) isa.Instruction {
	return isa.Instruction{Op: isa.LDA, Dst: dst, Src1: isa.RegZero, Imm: imm, MemID: -1, BrID: -1}
}

func add(dst, s1, s2 isa.Reg) isa.Instruction {
	return isa.Instruction{Op: isa.ADD, Dst: dst, Src1: s1, Src2: s2, MemID: -1, BrID: -1}
}

func TestScenario1SingleDistribution(t *testing.T) {
	// All three registers local to cluster 0: one copy, no transfers.
	retired, stats := run(t, dual(t), []isa.Instruction{
		lda(r(2), 1),
		lda(r(4), 2),
		add(r(0), r(2), r(4)),
	}, nil)
	if stats.DualDist != 0 || stats.SingleDist != 3 {
		t.Fatalf("distribution: %d single %d dual, want 3/0", stats.SingleDist, stats.DualDist)
	}
	addInst := retired[2]
	if addInst.dual || addInst.masterCl != 0 {
		t.Fatalf("add distributed dual=%v master=%d, want single on cluster 0", addInst.dual, addInst.masterCl)
	}
	if stats.OperandForwards != 0 || stats.ResultForwards != 0 {
		t.Fatal("no transfers expected")
	}
}

func TestScenario2OperandForward(t *testing.T) {
	// add r0 = r2 + r1: r2 and the destination r0 live in cluster 0, r1 in
	// cluster 1 (Figure 2 with the evaluation's parity assignment). The
	// slave reads r1 in cluster 1, writes it into cluster 0's operand
	// transfer buffer; the master issues the next cycle.
	retired, stats := run(t, dual(t), []isa.Instruction{
		lda(r(2), 1),
		lda(r(1), 2),
		add(r(0), r(2), r(1)),
	}, nil)
	if stats.DualDist != 1 {
		t.Fatalf("dual distributions = %d, want 1", stats.DualDist)
	}
	if stats.OperandForwards != 1 || stats.ResultForwards != 0 {
		t.Fatalf("forwards op=%d res=%d, want 1/0", stats.OperandForwards, stats.ResultForwards)
	}
	d := retired[2]
	if d.masterCl != 0 {
		t.Fatalf("master cluster = %d, want 0 (majority of locals)", d.masterCl)
	}
	if !d.slave.opFwdSlave || d.slave.recvsResult {
		t.Fatalf("slave roles: opFwd=%v recv=%v, want operand forwarding only", d.slave.opFwdSlave, d.slave.recvsResult)
	}
	// Figure 2 timing: the ldas issue at cycle 1 (distributed at 0) and
	// complete at 2; the slave issues at 2; the master one cycle later.
	if d.slave.issueCycle != 2 {
		t.Errorf("slave issued at %d, want 2", d.slave.issueCycle)
	}
	if d.master.issueCycle != d.slave.issueCycle+1 {
		t.Errorf("master issued at %d, want slave+1 = %d", d.master.issueCycle, d.slave.issueCycle+1)
	}
	if d.readyIn[0] != d.master.issueCycle+1 {
		t.Errorf("result ready in cluster 0 at %d, want %d", d.readyIn[0], d.master.issueCycle+1)
	}
}

func TestScenario3ResultForward(t *testing.T) {
	// add r1 = r0 + r2: both sources in cluster 0, destination in cluster
	// 1 (Figure 3). The master computes in cluster 0 and forwards through
	// cluster 1's result transfer buffer; the slave is issued one cycle
	// after the master (one-cycle-latency add) and writes the physical
	// register bound in cluster 1.
	retired, stats := run(t, dual(t), []isa.Instruction{
		lda(r(0), 1),
		lda(r(2), 2),
		add(r(1), r(0), r(2)),
	}, nil)
	if stats.OperandForwards != 0 || stats.ResultForwards != 1 {
		t.Fatalf("forwards op=%d res=%d, want 0/1", stats.OperandForwards, stats.ResultForwards)
	}
	d := retired[2]
	if d.masterCl != 0 {
		t.Fatalf("master cluster = %d, want 0", d.masterCl)
	}
	if d.slave.opFwdSlave || !d.slave.recvsResult {
		t.Fatalf("slave roles wrong: opFwd=%v recv=%v", d.slave.opFwdSlave, d.slave.recvsResult)
	}
	if !d.renamed[1] || d.renamed[0] {
		t.Fatalf("physical register allocation: renamed=%v, want cluster 1 only", d.renamed)
	}
	if d.master.issueCycle != 2 {
		t.Errorf("master issued at %d, want 2", d.master.issueCycle)
	}
	if d.slave.issueCycle != d.master.issueCycle+1 {
		t.Errorf("slave issued at %d, want master+1 = %d", d.slave.issueCycle, d.master.issueCycle+1)
	}
	if d.readyIn[1] != d.slave.issueCycle+1 {
		t.Errorf("r1 ready in cluster 1 at %d, want %d", d.readyIn[1], d.slave.issueCycle+1)
	}
}

func TestScenario4GlobalDestination(t *testing.T) {
	// add SP = r0 + r2: both sources cluster 0, global destination
	// (Figure 4). Physical registers are allocated in both clusters; the
	// master writes its own copy and the result buffer; the slave writes
	// cluster 1's copy.
	retired, stats := run(t, dual(t), []isa.Instruction{
		lda(r(0), 1),
		lda(r(2), 2),
		add(isa.RegSP, r(0), r(2)),
	}, nil)
	if stats.ResultForwards != 1 {
		t.Fatalf("result forwards = %d, want 1", stats.ResultForwards)
	}
	d := retired[2]
	if !d.renamed[0] || !d.renamed[1] {
		t.Fatalf("global destination must allocate in both clusters: %v", d.renamed)
	}
	if d.readyIn[0] != d.resultCycle {
		t.Errorf("cluster 0 copy ready at %d, want master result %d", d.readyIn[0], d.resultCycle)
	}
	if d.readyIn[1] != d.slave.issueCycle+1 {
		t.Errorf("cluster 1 copy ready at %d, want slave write %d", d.readyIn[1], d.slave.issueCycle+1)
	}
}

func TestScenario5OperandForwardGlobalDest(t *testing.T) {
	// add SP = r1 + r0 (Figure 5): one source per cluster, global
	// destination. The slave forwards r1, suspends, and wakes to write
	// cluster 1's copy when the master's result reaches the buffer.
	retired, stats := run(t, dual(t), []isa.Instruction{
		lda(r(1), 1),
		lda(r(0), 2),
		add(isa.RegSP, r(1), r(0)),
	}, nil)
	if stats.OperandForwards != 1 || stats.ResultForwards != 1 {
		t.Fatalf("forwards op=%d res=%d, want 1/1", stats.OperandForwards, stats.ResultForwards)
	}
	d := retired[2]
	if !d.slave.opFwdSlave || !d.slave.recvsResult {
		t.Fatalf("slave must both forward an operand and receive the result")
	}
	if d.master.issueCycle < d.slave.issueCycle+1 {
		t.Errorf("master issued at %d before slave+1 (%d)", d.master.issueCycle, d.slave.issueCycle+1)
	}
	if d.readyIn[1] != d.resultCycle+1 {
		t.Errorf("suspended slave wrote at %d, want result+1 = %d", d.readyIn[1], d.resultCycle+1)
	}
	if d.doneCycle != d.resultCycle+1 {
		t.Errorf("done at %d, want %d (slave wake)", d.doneCycle, d.resultCycle+1)
	}
}

func TestMasterMajoritySelection(t *testing.T) {
	// add r1 = r3 + r5: every register in cluster 1 → single distribution
	// to cluster 1.
	retired, _ := run(t, dual(t), []isa.Instruction{
		lda(r(3), 1),
		lda(r(5), 2),
		add(r(1), r(3), r(5)),
	}, nil)
	d := retired[2]
	if d.dual || d.masterCl != 1 {
		t.Fatalf("dual=%v master=%d, want single on cluster 1", d.dual, d.masterCl)
	}
}

func TestDependenceChainSingleCluster(t *testing.T) {
	// A chain of dependent adds on the single-cluster machine retires one
	// per cycle once the pipeline fills: cycles ≈ chain length.
	n := 64
	instrs := make([]isa.Instruction, n)
	instrs[0] = lda(r(2), 1)
	for i := 1; i < n; i++ {
		instrs[i] = add(r(2), r(2), r(2))
	}
	_, stats := run(t, perfectCaches(SingleCluster8Way()), instrs, nil)
	if stats.Instructions != int64(n) {
		t.Fatalf("retired %d, want %d", stats.Instructions, n)
	}
	// Lower bound: each add issues one cycle after its predecessor.
	if stats.Cycles < int64(n) {
		t.Errorf("cycles = %d, impossibly fast for a dependence chain of %d", stats.Cycles, n)
	}
	if stats.Cycles > int64(n)+20 {
		t.Errorf("cycles = %d, want ≈ %d (chain-limited)", stats.Cycles, n)
	}
}

func TestIndependentAddsReachIssueWidth(t *testing.T) {
	// Independent adds across 8 rotating destination registers: the
	// eight-way single cluster should sustain IPC near 8.
	n := 512
	instrs := make([]isa.Instruction, n)
	for i := range instrs {
		instrs[i] = lda(r((i%8)*2), int64(i))
	}
	_, stats := run(t, perfectCaches(SingleCluster8Way()), instrs, nil)
	if ipc := stats.IPC(); ipc < 6 {
		t.Errorf("IPC = %.2f, want near 8 for independent integer ops", ipc)
	}
}

func TestDualClusterPerClusterWidth(t *testing.T) {
	// Independent adds all bound to cluster 0 registers: a dual-cluster
	// machine can only issue 4 per cycle from one cluster.
	n := 512
	instrs := make([]isa.Instruction, n)
	for i := range instrs {
		instrs[i] = lda(r((i%8)*2), int64(i)) // even registers: cluster 0
	}
	_, stats := run(t, dual(t), instrs, nil)
	if ipc := stats.IPC(); ipc > 4.2 {
		t.Errorf("IPC = %.2f on one cluster, must be ≤ 4", ipc)
	}
	if ipc := stats.IPC(); ipc < 3 {
		t.Errorf("IPC = %.2f, want near 4", ipc)
	}
}

func TestDualClusterBalancedReachesFullWidth(t *testing.T) {
	// Alternating even/odd destinations spread across both clusters: IPC
	// approaches 8 again.
	n := 1024
	instrs := make([]isa.Instruction, n)
	for i := range instrs {
		instrs[i] = lda(r(i%16), int64(i))
	}
	_, stats := run(t, dual(t), instrs, nil)
	if ipc := stats.IPC(); ipc < 6 {
		t.Errorf("IPC = %.2f, want near 8 with balanced distribution", ipc)
	}
}
