package core

import (
	"fmt"

	"multicluster/internal/isa"
)

// fetch runs the fetch/distribute stage for cycle t: up to FetchWidth
// instructions are pulled (refetch queue first, then the trace), checked
// against the instruction cache, and distributed to dispatch queues in
// fetch order. Fetch stops at the first taken control flow, the first
// mispredicted branch, an instruction-cache miss, or a structural stall
// (queue or register file full), whichever comes first.
func (p *Processor) fetch(t int64) bool {
	if t < p.fetchStallUntil {
		if p.fetchStallIsReplay {
			p.stats.Fetch.Replay++
			p.probeStall(StallReplay)
		} else {
			p.stats.Fetch.ICacheMiss++
			p.probeStall(StallICacheMiss)
		}
		return false
	}
	if p.fetchBlockedByBranch(t) {
		p.stats.Fetch.Mispredict++
		p.probeStall(StallMispredict)
		return false
	}

	fetched := 0
	lineMask := uint64(p.icache.LineSize() - 1)
	linesTouched := p.linesTouched[:0]
	for fetched < p.cfg.FetchWidth {
		item := p.peekItem()
		if item == nil {
			break
		}
		// Dynamic reassignment hint: serialize, migrate, switch.
		if len(p.reassigns) > 0 {
			if r, ok := p.pendingReassign(item.idx); ok {
				if len(p.active) > 0 || fetched > 0 {
					p.stats.Reassign.DrainCycles++
					break // drain before switching
				}
				p.fetchStallUntil = p.applyReassign(r, t)
				p.fetchStallIsReplay = false
				break
			}
		}
		// Instruction-cache access, once per line per cycle.
		pc := isa.PCOf(item.idx)
		line := pc &^ lineMask
		touched := false
		for _, l := range linesTouched {
			if l == line {
				touched = true
				break
			}
		}
		if !touched {
			if extra := p.icache.Access(pc, t); extra > 0 {
				p.fetchStallUntil = t + int64(extra)
				p.fetchStallIsReplay = false
				if fetched == 0 {
					p.stats.Fetch.ICacheMiss++
					p.probeStall(StallICacheMiss)
				}
				break
			}
			linesTouched = append(linesTouched, line)
		}

		pl := p.plan(item.in)
		ok, queueFull, regsFull := p.canDistribute(item.in, pl)
		if !ok {
			if fetched == 0 {
				if queueFull {
					p.stats.Fetch.QueueFull++
					p.probeStall(StallQueueFull)
				} else if regsFull {
					p.stats.Fetch.RegsFull++
					p.probeStall(StallRegsFull)
				}
			}
			break
		}

		d := p.distribute(*item, pl, t)
		p.consumeItem()
		fetched++

		// Fetch discontinuities end the cycle's fetch group; a mispredicted
		// conditional branch blocks fetch entirely until it resolves (the
		// machine would be fetching the wrong path).
		if d.isCondBr && d.mispredicted {
			break
		}
		if item.in.Op.IsControl() && item.taken {
			break
		}
	}
	p.linesTouched = linesTouched
	return fetched > 0
}

// peekItem returns the next instruction to distribute without consuming it:
// replayed instructions first, then the trace. The returned pointer is into
// the processor's pending slot, valid until the next peek.
func (p *Processor) peekItem() *fetchItem {
	if p.havePending {
		return &p.pending
	}
	if len(p.refetch) > 0 {
		p.pending = p.refetch[0]
		p.refetch = p.refetch[1:]
		p.havePending = true
		return &p.pending
	}
	if p.traceDone {
		return nil
	}
	e, ok := p.reader.Next()
	if !ok {
		p.traceDone = true
		return nil
	}
	p.pending = fetchItem{idx: e.Index, in: e.Instr, addr: e.Addr, taken: e.Taken}
	p.havePending = true
	return &p.pending
}

func (p *Processor) consumeItem() { p.havePending = false }

// replay raises an instruction-replay exception (§2.1): the oldest
// instruction with an unissued copy is blocked — in a correctly-sized
// machine this can only persist when transfer-buffer entries are held by
// younger instructions — so every younger instruction is squashed,
// releasing their queue entries, physical registers, and buffer entries,
// and is refetched after a short restart penalty.
func (p *Processor) replay(t int64) error {
	oldest := p.oldestUnissued()
	if oldest == nil {
		return errDeadlock(p, t, "no unissued instruction")
	}
	// Squash everything younger than the blocked instruction (the active
	// list is in sequence order, so that is everything past the cursor).
	cut := p.unissuedHead + 1
	if cut >= len(p.active) {
		return errDeadlock(p, t, "blocked instruction has no younger instructions to squash")
	}
	victims := p.active[cut:]
	p.active = p.active[:cut]

	// Undo youngest-first so rename tables unwind correctly.
	for i := len(victims) - 1; i >= 0; i-- {
		d := victims[i]
		d.squashed = true
		if d.destReg != isa.RegNone {
			fp := bIdx(d.destReg.IsFP())
			for c := 0; c < p.cfg.Clusters; c++ {
				if d.renamed[c] {
					p.rename[c][d.destReg] = d.prevProd[c]
					p.freeRegs[c][fp]++
				}
			}
		}
		// Return any transfer-buffer entries the victim still holds.
		p.releaseHeld(d, true)
		p.releaseHeld(d, false)
		p.stats.ReplayedInstructions++
	}
	// Remove squashed copies from the dispatch queues.
	for c := 0; c < p.cfg.Clusters; c++ {
		kept := p.queue[c][:0]
		for _, u := range p.queue[c] {
			if !u.inst.squashed {
				kept = append(kept, u)
			}
		}
		p.queue[c] = kept
	}
	// Squashed-branch entries are pruned by resolveBranches; stale buffer
	// release events are ignored by the held flags when they fire.

	// Refetch the victims in program order, ahead of any not-yet-fetched
	// pending instruction and the rest of the trace.
	items := make([]fetchItem, 0, len(victims)+1+len(p.refetch))
	for _, d := range victims {
		items = append(items, fetchItem{idx: d.idx, in: d.in, addr: d.addr, taken: d.taken})
	}
	if p.havePending {
		items = append(items, p.pending)
		p.havePending = false
	}
	items = append(items, p.refetch...)
	p.refetch = items

	p.fetchStallUntil = t + int64(p.cfg.ReplayPenalty)
	p.fetchStallIsReplay = true
	p.stats.Replays++
	if p.probes != nil && p.probes.Replay != nil {
		p.probes.Replay(len(victims))
	}
	return nil
}

func errDeadlock(p *Processor, t int64, why string) error {
	return &DeadlockError{Cycle: t, InFlight: len(p.active), Why: why}
}

// DeadlockError reports a machine state the replay mechanism cannot
// recover, which indicates a modelling bug rather than a workload property.
type DeadlockError struct {
	Cycle    int64
	InFlight int
	Why      string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("core: unrecoverable stall at cycle %d with %d in flight: %s", e.Cycle, e.InFlight, e.Why)
}
